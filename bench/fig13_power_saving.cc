/**
 * @file
 * Figure 13: DRAM device power with AMB prefetching, normalised to
 * FB-DIMM without prefetching, for region sizes K = 2/4/8, buffer
 * sizes 32/64/128 and associativities 1/2/4/full, per group.
 *
 * The power model follows Section 5.5: an activate/precharge pair
 * costs ~4x the dynamic energy of one column access (Micron DDR2
 * calculator at 70 % utilisation, close page); power is the simulated
 * operation mix divided by the measured run time.
 *
 * Shape targets: large savings for single-core (paper: ~30 % at K=4),
 * ~15 % averages; aggressive K=8 at eight cores can *increase* power
 * (the paper reports +12.7 %) because extra column accesses outgrow
 * the saved activations.
 */

#include <cstring>
#include <iostream>

#include "power/power_model.hh"
#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        applyInstsFromEnv(c);
        return c;
    };

    struct Variant {
        const char *name;
        unsigned k, entries, ways;
    };
    const Variant variants[] = {
        {"#CL=2", 2, 64, 0},
        {"#CL=4", 4, 64, 0},
        {"#CL=8", 8, 64, 0},
        {"#entry=32", 4, 32, 0},
        {"#entry=128", 4, 128, 0},
        {"4-way", 4, 64, 4},
    };

    PowerModel pm;

    std::cout << "== Figure 13: normalised DRAM dynamic power of AMB "
                 "prefetching ==\n(relative to FB-DIMM without "
                 "prefetching; < 1.0 is a saving)\n\n";

    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        TextTable t({"variant", "rel. dynamic energy", "ACT/PRE",
                     "CAS", "rel. total power"});
        for (const auto &v : variants) {
            double rel = 0.0, rel_tot = 0.0;
            double d_act = 0.0, d_cas = 0.0;
            unsigned n = 0;
            for (const auto &mix : mixesFor(cores)) {
                RunResult base =
                    runMix(prep(SystemConfig::fbdBase()), mix);
                SystemConfig c = prep(SystemConfig::fbdAp());
                c.regionLines = v.k;
                c.ambPrefetch.entries = v.entries;
                c.ambPrefetch.ways = v.ways;
                RunResult ap = runMix(c, mix);
                rel += pm.relativeDynamicEnergy(
                    ap.ops, ap.totalInsts(), base.ops,
                    base.totalInsts());
                rel_tot += pm.relativeTotalPower(
                    ap.ops, ap.measuredTicks, base.ops,
                    base.measuredTicks);
                // Operation-count ratios (per instruction of work).
                const double tb = base.totalInsts();
                const double ta = ap.totalInsts();
                d_act += (static_cast<double>(ap.ops.actPre) / ta)
                    / (static_cast<double>(base.ops.actPre) / tb);
                d_cas += (static_cast<double>(ap.ops.cas()) / ta)
                    / (static_cast<double>(base.ops.cas()) / tb);
                ++n;
            }
            t.addRow({v.name, fmtD(rel / n), fmtD(d_act / n),
                      fmtD(d_cas / n), fmtD(rel_tot / n)});
        }
        std::cout << cores << "-core average\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
