/**
 * @file
 * Figure 10: average utilized bandwidth vs average memory latency for
 * FB-DIMM with (FBD-AP) and without (FBD) AMB prefetching, per
 * workload.
 *
 * Shape target: for every workload FBD-AP sustains *more* bandwidth at
 * *lower* latency — the AMB cache removes DRAM bank conflicts from the
 * critical path and serves hits 30 ns sooner.
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        applyInstsFromEnv(c);
        return c;
    };

    std::cout << "== Figure 10: bandwidth vs latency, FBD vs FBD-AP "
                 "==\n\n";

    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        TextTable t({"workload", "FBD GB/s", "FBD lat ns",
                     "AP GB/s", "AP lat ns"});
        double bw_f = 0, lat_f = 0, bw_a = 0, lat_a = 0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            RunResult f = runMix(prep(SystemConfig::fbdBase()), mix);
            RunResult a = runMix(prep(SystemConfig::fbdAp()), mix);
            bw_f += f.bandwidthGBs;
            lat_f += f.avgReadLatencyNs;
            bw_a += a.bandwidthGBs;
            lat_a += a.avgReadLatencyNs;
            ++n;
            t.addRow({mix.name, fmtD(f.bandwidthGBs, 2),
                      fmtD(f.avgReadLatencyNs, 1),
                      fmtD(a.bandwidthGBs, 2),
                      fmtD(a.avgReadLatencyNs, 1)});
        }
        t.addRow({"average", fmtD(bw_f / n, 2), fmtD(lat_f / n, 1),
                  fmtD(bw_a / n, 2), fmtD(lat_a / n, 1)});
        std::cout << cores << "-core workloads\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
