/**
 * @file
 * Ablation A5: hardware prefetching (Section 5.4's speculation).
 *
 * The paper evaluates AMB prefetching against *software* cache
 * prefetching only and conjectures that "AMB prefetching will improve
 * performance similarly if hardware prefetching is used".  This bench
 * tests that: an L2 stream prefetcher replaces the compiler
 * prefetches (SP off), and AMB prefetching is measured on top of it.
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c, bool hw, bool ap) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        c.swPrefetch = false;  // isolate the hardware prefetcher
        c.hwPrefetch = hw;
        if (!ap) {
            c.ambPrefetch.policy = "none";
            c.apEnable = false;
            c.scheme = Interleave::Cacheline;
        }
        applyInstsFromEnv(c);
        return c;
    };

    std::cout << "== Ablation A5: AMB prefetching under hardware "
                 "stream prefetching ==\n(software prefetching off; "
                 "speedup relative to plain FBD)\n\n";

    TextTable t({"cores", "FBD", "FBD+HWP", "FBD-AP", "FBD-AP+HWP",
                 "AP gain", "AP gain w/ HWP"});
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        double f = 0, fh = 0, a = 0, ah = 0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            f += runMix(prep(SystemConfig::fbdBase(), false, false),
                        mix).ipcSum();
            fh += runMix(prep(SystemConfig::fbdBase(), true, false),
                         mix).ipcSum();
            a += runMix(prep(SystemConfig::fbdAp(), false, true),
                        mix).ipcSum();
            ah += runMix(prep(SystemConfig::fbdAp(), true, true),
                         mix).ipcSum();
            ++n;
        }
        t.addRow({std::to_string(cores), fmtD(f / n), fmtD(fh / n),
                  fmtD(a / n), fmtD(ah / n), fmtPct(a / f - 1.0),
                  fmtPct(ah / fh - 1.0)});
    }
    t.print(std::cout);
    std::cout << "\nThe paper's conjecture holds if the two AP-gain "
                 "columns are similar.\n";
    return 0;
}
