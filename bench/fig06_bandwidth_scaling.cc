/**
 * @file
 * Figure 6: performance impact of memory bandwidth — sweeping the
 * channel data rate (533 / 667 / 800 MT/s) and the number of logic
 * channels (1 / 2 / 4) for both DDR2 and FB-DIMM, reported as the
 * average SMT speedup per core-count group.
 *
 * Shape targets: performance rises monotonically with bandwidth; the
 * gains are far larger for the 4- and 8-core workloads (the paper
 * quotes +75 % for 8 cores going from one to two channels, +49 % from
 * two to four, vs +8.8 % / +5.1 % for single-core).
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        applyInstsFromEnv(c);
        return c;
    };

    ReferenceSet refs(prep(SystemConfig::ddr2()));

    auto group_avg = [&](const SystemConfig &cfg, unsigned cores) {
        double sum = 0.0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            RunResult r = runMix(cfg, mix);
            sum += smtSpeedup(r, mix, refs);
            ++n;
        }
        return sum / n;
    };

    std::cout << "== Figure 6: bandwidth impact on performance ==\n"
              << "average SMT speedup per group\n\n";

    std::cout << "-- data-rate sweep (2 logic channels) --\n";
    {
        TextTable t({"cores", "DDR2-533", "DDR2-667", "DDR2-800",
                     "FBD-533", "FBD-667", "FBD-800"});
        for (unsigned cores : {1u, 2u, 4u, 8u}) {
            std::vector<std::string> row{std::to_string(cores)};
            for (bool fbd : {false, true}) {
                for (unsigned rate : {533u, 667u, 800u}) {
                    SystemConfig c = prep(fbd ? SystemConfig::fbdBase()
                                              : SystemConfig::ddr2());
                    c.dataRate = rate;
                    row.push_back(fmtD(group_avg(c, cores)));
                }
            }
            t.addRow(row);
        }
        t.print(std::cout);
    }

    std::cout << "\n-- channel-count sweep (667 MT/s) --\n";
    {
        TextTable t({"cores", "DDR2-1ch", "DDR2-2ch", "DDR2-4ch",
                     "FBD-1ch", "FBD-2ch", "FBD-4ch"});
        for (unsigned cores : {1u, 2u, 4u, 8u}) {
            std::vector<std::string> row{std::to_string(cores)};
            for (bool fbd : {false, true}) {
                for (unsigned ch : {1u, 2u, 4u}) {
                    SystemConfig c = prep(fbd ? SystemConfig::fbdBase()
                                              : SystemConfig::ddr2());
                    c.logicChannels = ch;
                    row.push_back(fmtD(group_avg(c, cores)));
                }
            }
            t.addRow(row);
        }
        t.print(std::cout);
    }
    return 0;
}
