/**
 * @file
 * Figure 9: decomposing the AMB-prefetching gain into its two sources
 * by comparing
 *   FBD      — FB-DIMM without prefetching,
 *   FBD-APFL — AMB prefetching with Full Latency: hits avoid DRAM
 *              bank activity (activation/column access) but pay the
 *              full miss idle latency, isolating the bandwidth-
 *              utilisation gain, and
 *   FBD-AP   — full AMB prefetching.
 *
 * (FBD-APFL - FBD) = gain from better bandwidth utilisation;
 * (FBD-AP - FBD-APFL) = gain from idle-latency reduction.
 *
 * Shape targets: both sources comparable (paper: 8-10 % vs 5-9 %);
 * at eight cores the bandwidth share exceeds the latency share.
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        applyInstsFromEnv(c);
        return c;
    };

    ReferenceSet refs(prep(SystemConfig::ddr2()));

    std::cout << "== Figure 9: decomposition of the performance gain "
                 "==\n\n";

    TextTable t({"cores", "FBD", "FBD-APFL", "FBD-AP",
                 "bandwidth gain", "latency gain"});
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        double s_fbd = 0.0, s_fl = 0.0, s_ap = 0.0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            s_fbd += smtSpeedup(runMix(prep(SystemConfig::fbdBase()),
                                       mix), mix, refs);
            SystemConfig fl = prep(SystemConfig::fbdAp());
            fl.apFullLatency = true;
            s_fl += smtSpeedup(runMix(fl, mix), mix, refs);
            s_ap += smtSpeedup(runMix(prep(SystemConfig::fbdAp()),
                                      mix), mix, refs);
            ++n;
        }
        s_fbd /= n;
        s_fl /= n;
        s_ap /= n;
        t.addRow({std::to_string(cores), fmtD(s_fbd), fmtD(s_fl),
                  fmtD(s_ap), fmtPct(s_fl / s_fbd - 1.0),
                  fmtPct(s_ap / s_fl - 1.0)});
    }
    t.print(std::cout);
    return 0;
}
