/**
 * @file
 * Figure 8: AMB-prefetch coverage (#prefetch_hit / #read) and
 * efficiency (#prefetch_hit / #prefetch) while varying
 *   - the region size / interleaving granularity K (#CL = 2/4/8),
 *   - the AMB cache size (#entry = 32/64/128), and
 *   - the set associativity (1 / 2 / 4 / full),
 * per core-count group, averaged over the group's workloads.
 *
 * Shape targets: ~50 % coverage at K=4 (upper bound 75 %); larger K
 * raises coverage but lowers efficiency; more entries or associativity
 * help both.
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        applyInstsFromEnv(c);
        return c;
    };

    struct Variant {
        const char *name;
        unsigned k, entries, ways;
    };
    // Default: #CL=4, #entry=64, fully associative (ways=0).
    const Variant variants[] = {
        {"#CL=2", 2, 64, 0},
        {"#CL=4", 4, 64, 0},
        {"#CL=8", 8, 64, 0},
        {"#entry=32", 4, 32, 0},
        {"#entry=64", 4, 64, 0},
        {"#entry=128", 4, 128, 0},
        {"Set=1(direct)", 4, 64, 1},
        {"Set=2", 4, 64, 2},
        {"Set=4", 4, 64, 4},
        {"Set=Full", 4, 64, 0},
    };

    std::cout << "== Figure 8: prefetch coverage and efficiency ==\n\n";

    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        TextTable t({"variant", "coverage", "efficiency"});
        for (const auto &v : variants) {
            double cov = 0.0, eff = 0.0;
            unsigned n = 0;
            for (const auto &mix : mixesFor(cores)) {
                SystemConfig c = prep(SystemConfig::fbdAp());
                c.regionLines = v.k;
                c.ambPrefetch.entries = v.entries;
                c.ambPrefetch.ways = v.ways;
                RunResult r = runMix(c, mix);
                cov += r.coverage;
                eff += r.efficiency;
                ++n;
            }
            t.addRow({v.name, fmtPct(cov / n), fmtPct(eff / n)});
        }
        std::cout << cores << "-core average\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
