/**
 * @file
 * Ablation A1: Variable Read Latency (VRL) on/off, with and without
 * AMB prefetching.  The paper states (Section 5) that the AMB-
 * prefetching improvement with VRL is "very similar" to without; this
 * bench verifies that claim in the model.
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c, bool vrl) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        c.vrl = vrl;
        applyInstsFromEnv(c);
        return c;
    };

    std::cout << "== Ablation A1: variable read latency ==\n\n";

    TextTable t({"cores", "FBD", "FBD+VRL", "FBD-AP", "FBD-AP+VRL",
                 "AP gain", "AP gain w/ VRL"});
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        double f = 0, fv = 0, a = 0, av = 0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            f += runMix(prep(SystemConfig::fbdBase(), false),
                        mix).ipcSum();
            fv += runMix(prep(SystemConfig::fbdBase(), true),
                         mix).ipcSum();
            a += runMix(prep(SystemConfig::fbdAp(), false),
                        mix).ipcSum();
            av += runMix(prep(SystemConfig::fbdAp(), true),
                         mix).ipcSum();
            ++n;
        }
        t.addRow({std::to_string(cores), fmtD(f / n), fmtD(fv / n),
                  fmtD(a / n), fmtD(av / n), fmtPct(a / f - 1.0),
                  fmtPct(av / fv - 1.0)});
    }
    t.print(std::cout);
    return 0;
}
