/**
 * @file
 * Ablation A2: interleaving schemes.  Compares, on FB-DIMM without
 * prefetching, cacheline interleaving (close page), multi-cacheline
 * interleaving (close page) and page interleaving (open page); and,
 * with AMB prefetching, multi-cacheline vs page-interleaved regions
 * (the two schemes Figure 2 describes for AP).
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c, Interleave s) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        c.scheme = s;
        applyInstsFromEnv(c);
        return c;
    };

    std::cout << "== Ablation A2: DRAM interleaving schemes ==\n"
              << "throughput (sum of IPCs), group averages\n\n";

    TextTable t({"cores", "FBD line", "FBD multi-line", "FBD page",
                 "AP multi-line", "AP page"});
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        double line = 0, multi = 0, page = 0, apm = 0, app = 0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            line += runMix(prep(SystemConfig::fbdBase(),
                                Interleave::Cacheline), mix).ipcSum();
            multi += runMix(prep(SystemConfig::fbdBase(),
                                 Interleave::MultiCacheline),
                            mix).ipcSum();
            page += runMix(prep(SystemConfig::fbdBase(),
                                Interleave::Page), mix).ipcSum();
            apm += runMix(prep(SystemConfig::fbdAp(),
                               Interleave::MultiCacheline),
                          mix).ipcSum();
            app += runMix(prep(SystemConfig::fbdAp(),
                               Interleave::Page), mix).ipcSum();
            ++n;
        }
        t.addRow({std::to_string(cores), fmtD(line / n),
                  fmtD(multi / n), fmtD(page / n), fmtD(apm / n),
                  fmtD(app / n)});
    }
    t.print(std::cout);
    return 0;
}
