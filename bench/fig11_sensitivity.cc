/**
 * @file
 * Figure 11: sensitivity of AMB-prefetching performance to the region
 * size (#CL = 2/4/8), prefetch-buffer size (32/64/128 lines) and set
 * associativity (direct/2/4/full), normalised to the default setting
 * (#CL=4, 64 entries, fully associative), per core-count group.
 *
 * Shape targets: 1- and 2-core workloads like larger K; 4- and 8-core
 * prefer K=4.  Buffer sizes 32-128 perform closely.  Two-way reaches
 * >= 98 % of fully associative; direct-mapped drops to ~87-95 %.
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        applyInstsFromEnv(c);
        return c;
    };

    struct Variant {
        const char *name;
        unsigned k, entries, ways;
    };
    const Variant variants[] = {
        {"#CL=2", 2, 64, 0},
        {"#CL=4 (default)", 4, 64, 0},
        {"#CL=8", 8, 64, 0},
        {"#entry=32", 4, 32, 0},
        {"#entry=64 (default)", 4, 64, 0},
        {"#entry=128", 4, 128, 0},
        {"direct-mapped", 4, 64, 1},
        {"2-way", 4, 64, 2},
        {"4-way", 4, 64, 4},
        {"full (default)", 4, 64, 0},
    };

    std::cout << "== Figure 11: sensitivity to AP configuration ==\n"
              << "throughput (sum of IPCs) normalised to the default "
                 "setting\n\n";

    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        // Default baseline per group.
        double base = 0.0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            base += runMix(prep(SystemConfig::fbdAp()), mix).ipcSum();
            ++n;
        }
        base /= n;

        TextTable t({"variant", "relative performance"});
        for (const auto &v : variants) {
            double s = 0.0;
            for (const auto &mix : mixesFor(cores)) {
                SystemConfig c = prep(SystemConfig::fbdAp());
                c.regionLines = v.k;
                c.ambPrefetch.entries = v.entries;
                c.ambPrefetch.ways = v.ways;
                s += runMix(c, mix).ipcSum();
            }
            s /= n;
            t.addRow({v.name, fmtD(s / base)});
        }
        std::cout << cores << "-core average\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
