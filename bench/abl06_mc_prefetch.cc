/**
 * @file
 * Ablation A6: AMB prefetching vs controller-level prefetching.
 *
 * Section 6 of the paper positions AMB prefetching against the class
 * of designs that prefetch from DRAM *into the memory controller*
 * (Lin, Reinhardt and Burger [13]): those serve hits with an even
 * shorter latency, but every prefetched line crosses the processor-
 * side channel, spending exactly the bandwidth that gets scarce with
 * more cores.  This bench measures both on identical region fetching.
 *
 * Expected shape: MC prefetching competitive (or ahead, thanks to the
 * lower hit latency) at one core; AMB prefetching pulls ahead as the
 * channel saturates.
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        applyInstsFromEnv(c);
        return c;
    };

    auto mcp = [&] {
        SystemConfig c = SystemConfig::fbdBase();
        c.scheme = Interleave::MultiCacheline;
        c.mcBufPrefetch.policy = "region";
        return prep(c);
    };

    std::cout << "== Ablation A6: prefetch destination — AMB cache "
                 "vs memory controller ==\n\n";

    TextTable t({"cores", "FBD", "FBD-MCP", "FBD-AP", "MCP GB/s",
                 "AP GB/s", "MCP cover", "AP cover"});
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        double f = 0, m = 0, a = 0;
        double m_bw = 0, a_bw = 0, m_cov = 0, a_cov = 0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            f += runMix(prep(SystemConfig::fbdBase()), mix).ipcSum();
            RunResult rm = runMix(mcp(), mix);
            RunResult ra = runMix(prep(SystemConfig::fbdAp()), mix);
            m += rm.ipcSum();
            a += ra.ipcSum();
            m_bw += rm.bandwidthGBs;
            a_bw += ra.bandwidthGBs;
            m_cov += rm.coverage;
            a_cov += ra.coverage;
            ++n;
        }
        t.addRow({std::to_string(cores), fmtD(f / n), fmtD(m / n),
                  fmtD(a / n), fmtD(m_bw / n, 1), fmtD(a_bw / n, 1),
                  fmtPct(m_cov / n), fmtPct(a_cov / n)});
    }
    t.print(std::cout);
    std::cout << "\nMCP bandwidth includes its prefetch transfers; AP "
                 "keeps them behind the AMBs.\n";
    return 0;
}
