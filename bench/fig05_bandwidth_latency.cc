/**
 * @file
 * Figure 5: average utilized bandwidth (x) vs average memory latency
 * (y) for DDR2 and FB-DIMM, per workload.  The paper's shape: at one
 * core FB-DIMM shows slightly higher latency at equal bandwidth; at
 * eight cores FB-DIMM sustains more bandwidth at lower latency.
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 30'000 : 75'000;
        c.measureInsts = quick ? 120'000 : 300'000;
        applyInstsFromEnv(c);
        return c;
    };

    std::cout << "== Figure 5: utilized bandwidth vs average latency, "
                 "DDR2 vs FB-DIMM ==\n\n";

    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        TextTable t({"workload", "DDR2 GB/s", "DDR2 lat ns",
                     "FBD GB/s", "FBD lat ns"});
        double bw_d = 0, lat_d = 0, bw_f = 0, lat_f = 0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            RunResult d = runMix(prep(SystemConfig::ddr2()), mix);
            RunResult f = runMix(prep(SystemConfig::fbdBase()), mix);
            bw_d += d.bandwidthGBs;
            lat_d += d.avgReadLatencyNs;
            bw_f += f.bandwidthGBs;
            lat_f += f.avgReadLatencyNs;
            ++n;
            t.addRow({mix.name, fmtD(d.bandwidthGBs, 2),
                      fmtD(d.avgReadLatencyNs, 1),
                      fmtD(f.bandwidthGBs, 2),
                      fmtD(f.avgReadLatencyNs, 1)});
        }
        t.addRow({"average", fmtD(bw_d / n, 2), fmtD(lat_d / n, 1),
                  fmtD(bw_f / n, 2), fmtD(lat_f / n, 1)});
        std::cout << cores << "-core workloads\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
