/**
 * @file
 * Figure 12: interaction of AMB prefetching (AP) and software cache
 * prefetching (SP).  Four machines per group — no prefetching, AP
 * only, SP only, AP+SP — reported as SMT speedup relative to the
 * no-prefetching FB-DIMM, averaged per group.
 *
 * Shape targets: SP alone beats AP alone at 1-4 cores but falls below
 * it at 8 cores (software prefetches turn late/bandwidth-hungry);
 * AP+SP is close to the sum of the individual gains (the mechanisms
 * are complementary, not overlapping).
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c, bool sp, bool ap) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        c.swPrefetch = sp;
        if (!ap) {
            c.ambPrefetch.policy = "none";
            c.apEnable = false;
            c.scheme = Interleave::Cacheline;
        }
        applyInstsFromEnv(c);
        return c;
    };

    std::cout << "== Figure 12: AMB prefetching vs software prefetching "
                 "==\nSMT speedup relative to FB-DIMM with no "
                 "prefetching at all\n\n";

    TextTable t({"cores", "NONE", "AP", "SP", "AP+SP", "AP+SP vs "
                 "sum"});
    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        double none = 0, ap = 0, sp = 0, both = 0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            none += runMix(prep(SystemConfig::fbdBase(), false, false),
                           mix).ipcSum();
            ap += runMix(prep(SystemConfig::fbdAp(), false, true),
                         mix).ipcSum();
            sp += runMix(prep(SystemConfig::fbdBase(), true, false),
                         mix).ipcSum();
            both += runMix(prep(SystemConfig::fbdAp(), true, true),
                           mix).ipcSum();
            ++n;
        }
        const double r_ap = ap / none;
        const double r_sp = sp / none;
        const double r_both = both / none;
        const double sum = 1.0 + (r_ap - 1.0) + (r_sp - 1.0);
        t.addRow({std::to_string(cores), "1.000", fmtD(r_ap),
                  fmtD(r_sp), fmtD(r_both),
                  fmtPct(r_both / sum - 1.0)});
    }
    t.print(std::cout);
    return 0;
}
