/**
 * @file
 * Substrate microbenchmarks (google-benchmark): raw throughput of the
 * simulation kernel and the hot data structures — the event queue,
 * the AMB cache, the address map, the cache tag array and the
 * synthetic trace generator.  These gate overall simulation speed.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "cache/cache_array.hh"
#include "mc/address_map.hh"
#include "prefetch/amb_cache.hh"
#include "sim/event_queue.hh"
#include "workload/generator.hh"

namespace {

using namespace fbdp;

void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    EventQueue eq;
    int counter = 0;
    Event ev([&counter] { ++counter; });
    Tick t = 0;
    for (auto _ : state) {
        t += 100;
        eq.schedule(&ev, t);
        eq.step();
    }
    benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_EventQueueScheduleStep);

void
BM_EventQueueFanout(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        EventQueue eq;
        std::vector<std::unique_ptr<Event>> evs;
        int counter = 0;
        for (int i = 0; i < n; ++i)
            evs.push_back(std::make_unique<Event>(
                [&counter] { ++counter; }));
        state.ResumeTiming();
        for (int i = 0; i < n; ++i)
            eq.schedule(evs[static_cast<size_t>(i)].get(),
                        static_cast<Tick>((i * 7919) % 100000));
        eq.run();
        benchmark::DoNotOptimize(counter);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueFanout)->Arg(1024)->Arg(16384);

void
BM_AmbCacheLookupHit(benchmark::State &state)
{
    AmbCache cache(64, static_cast<unsigned>(state.range(0)));
    for (unsigned i = 0; i < 64; ++i)
        cache.insert(static_cast<Addr>(i) * lineBytes, 0);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(a));
        a = (a + lineBytes) % (64 * lineBytes);
    }
}
BENCHMARK(BM_AmbCacheLookupHit)->Arg(0)->Arg(2)->Arg(4);

void
BM_AmbCacheInsertChurn(benchmark::State &state)
{
    AmbCache cache(64, 0);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.insert(a, 0));
        a += lineBytes;
    }
}
BENCHMARK(BM_AmbCacheInsertChurn);

void
BM_AddressMap(benchmark::State &state)
{
    AddressMapConfig cfg;
    cfg.scheme = static_cast<Interleave>(state.range(0));
    AddressMap map(cfg);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.map(a));
        a += lineBytes;
    }
}
BENCHMARK(BM_AddressMap)->Arg(0)->Arg(1)->Arg(2);

void
BM_CacheArrayAccess(benchmark::State &state)
{
    CacheArray l2(4 * 1024 * 1024, 4);
    Addr a = 0;
    for (auto _ : state) {
        if (!l2.lookup(a))
            l2.install(a, false);
        a += lineBytes;
        if (a > (16u << 20))
            a = 0;
    }
}
BENCHMARK(BM_CacheArrayAccess);

void
BM_SyntheticGenerator(benchmark::State &state)
{
    SyntheticGenerator gen(benchProfile("swim"), 0, 42, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_SyntheticGenerator);

} // namespace

BENCHMARK_MAIN();
