/**
 * @file
 * Figure 4: SMT speedup of 1-, 2-, 4- and 8-core execution with DDR2
 * and FB-DIMM memory systems (no AMB prefetching).  Reference points
 * are the single-program runs on single-core DDR2, so the DDR2
 * single-core bars average 1.0 by construction.
 *
 * Shape targets from the paper: DDR2 slightly ahead at 1-2 cores
 * (-1.5 % / -0.6 % for FBD), FB-DIMM ahead at 4 and 8 cores
 * (+1.1 % / +6.0 %).
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 30'000 : 75'000;
        c.measureInsts = quick ? 120'000 : 300'000;
        applyInstsFromEnv(c);
        return c;
    };

    ReferenceSet refs(prep(SystemConfig::ddr2()));

    std::cout << "== Figure 4: SMT speedup, DDR2 vs FB-DIMM ==\n\n";

    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        TextTable t({"workload", "DDR2", "FBD", "FBD vs DDR2"});
        double sum_d = 0.0, sum_f = 0.0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            RunResult d = runMix(prep(SystemConfig::ddr2()), mix);
            RunResult f = runMix(prep(SystemConfig::fbdBase()), mix);
            const double sd = smtSpeedup(d, mix, refs);
            const double sf = smtSpeedup(f, mix, refs);
            sum_d += sd;
            sum_f += sf;
            ++n;
            t.addRow({mix.name, fmtD(sd), fmtD(sf),
                      fmtPct(sf / sd - 1.0)});
        }
        t.addRow({"average", fmtD(sum_d / n), fmtD(sum_f / n),
                  fmtPct(sum_f / sum_d - 1.0)});
        std::cout << cores << "-core workloads\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
