/**
 * @file
 * Ablation A4: the power/performance balance the paper leaves as
 * future work (Section 5.5: "we plan to study the trade off in the
 * future ... the prefetch buffer with four-way associativity, 64
 * cache lines and using four-cacheline interleaving mode is a good
 * choice").  Sweeps the design space and prints speedup vs relative
 * DRAM energy so the Pareto frontier is visible; flags the paper's
 * recommended point.
 */

#include <cstring>
#include <iostream>

#include "power/power_model.hh"
#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        applyInstsFromEnv(c);
        return c;
    };

    PowerModel pm;

    std::cout << "== Ablation A4: power/performance balance "
                 "(paper Section 5.5 future work) ==\n\n";

    for (unsigned cores : {1u, 4u}) {
        // Baselines per group.
        double base_perf = 0.0;
        std::vector<RunResult> bases;
        for (const auto &mix : mixesFor(cores)) {
            bases.push_back(runMix(prep(SystemConfig::fbdBase()),
                                   mix));
            base_perf += bases.back().ipcSum();
        }

        TextTable t({"K", "entries", "ways", "speedup",
                     "rel. energy", "note"});
        for (unsigned k : {2u, 4u, 8u}) {
            for (unsigned entries : {32u, 64u, 128u}) {
                for (unsigned ways : {1u, 2u, 4u, 0u}) {
                    double perf = 0.0, energy = 0.0;
                    unsigned i = 0;
                    for (const auto &mix : mixesFor(cores)) {
                        SystemConfig c = prep(SystemConfig::fbdAp());
                        c.regionLines = k;
                        c.ambEntries = entries;
                        c.ambWays = ways;
                        RunResult r = runMix(c, mix);
                        perf += r.ipcSum();
                        energy += pm.relativeDynamicEnergy(
                            r.ops, r.totalInsts(), bases[i].ops,
                            bases[i].totalInsts());
                        ++i;
                    }
                    const bool recommended =
                        k == 4 && entries == 64 && ways == 4;
                    t.addRow({std::to_string(k),
                              std::to_string(entries),
                              ways ? std::to_string(ways) : "full",
                              fmtPct(perf / base_perf - 1.0),
                              fmtD(energy / i),
                              recommended ? "<- paper pick" : ""});
                }
            }
        }
        std::cout << cores << "-core average\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
