/**
 * @file
 * Ablation A4: the power/performance balance the paper leaves as
 * future work (Section 5.5: "we plan to study the trade off in the
 * future ... the prefetch buffer with four-way associativity, 64
 * cache lines and using four-cacheline interleaving mode is a good
 * choice").  Sweeps the design space and prints speedup vs relative
 * DRAM energy so the Pareto frontier is visible; flags the paper's
 * recommended point.
 *
 * The 36-variant x mix-group grid runs as batches of RunCells on the
 * worker pool (FBDP_JOBS), with results in input order.
 */

#include <cstring>
#include <iostream>

#include "power/power_model.hh"
#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 20'000 : 50'000;
        c.measureInsts = quick ? 80'000 : 200'000;
        applyInstsFromEnv(c);
        return c;
    };

    PowerModel pm;

    std::cout << "== Ablation A4: power/performance balance "
                 "(paper Section 5.5 future work) ==\n\n";

    struct Variant
    {
        unsigned k, entries, ways;
    };
    std::vector<Variant> variants;
    for (unsigned k : {2u, 4u, 8u})
        for (unsigned entries : {32u, 64u, 128u})
            for (unsigned ways : {1u, 2u, 4u, 0u})
                variants.push_back({k, entries, ways});

    for (unsigned cores : {1u, 4u}) {
        const auto &group = mixesFor(cores);
        const unsigned nMixes = static_cast<unsigned>(group.size());

        // Baselines per group, one cell per mix.
        std::vector<RunCell> baseCells;
        for (const auto &mix : group)
            baseCells.push_back(
                {prep(SystemConfig::fbdBase()), &mix});
        const std::vector<RunResult> bases = runCells(baseCells);
        double base_perf = 0.0;
        for (const RunResult &r : bases)
            base_perf += r.ipcSum();

        // The full variant x mix grid as one batch.
        std::vector<RunCell> cells;
        for (const Variant &v : variants) {
            for (const auto &mix : group) {
                SystemConfig c = prep(SystemConfig::fbdAp());
                c.regionLines = v.k;
                c.ambPrefetch.entries = v.entries;
                c.ambPrefetch.ways = v.ways;
                cells.push_back({std::move(c), &mix});
            }
        }
        const std::vector<RunResult> results = runCells(cells);

        TextTable t({"K", "entries", "ways", "speedup",
                     "rel. energy", "note"});
        for (size_t vi = 0; vi < variants.size(); ++vi) {
            const Variant &v = variants[vi];
            double perf = 0.0, energy = 0.0;
            for (unsigned i = 0; i < nMixes; ++i) {
                const RunResult &r = results[vi * nMixes + i];
                perf += r.ipcSum();
                energy += pm.relativeDynamicEnergy(
                    r.ops, r.totalInsts(), bases[i].ops,
                    bases[i].totalInsts());
            }
            const bool recommended =
                v.k == 4 && v.entries == 64 && v.ways == 4;
            t.addRow({std::to_string(v.k),
                      std::to_string(v.entries),
                      v.ways ? std::to_string(v.ways) : "full",
                      fmtPct(perf / base_perf - 1.0),
                      fmtD(energy / nMixes),
                      recommended ? "<- paper pick" : ""});
        }
        std::cout << cores << "-core average\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
