/**
 * @file
 * Figure 7: SMT speedup of FB-DIMM with and without AMB prefetching,
 * per workload, for 1-, 2-, 4- and 8-core machines.  Reference points
 * are the single-program runs on single-core two-channel DDR2, as in
 * the paper.
 *
 * Flags: --quick (shorter runs); env FBDP_MEASURE_INSTS overrides.
 */

#include <cstring>
#include <iostream>

#include "system/metrics.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"

int
main(int argc, char **argv)
{
    using namespace fbdp;

    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--quick"))
            quick = true;
    }

    auto prep = [&](SystemConfig c) {
        c.warmupInsts = quick ? 30'000 : 75'000;
        c.measureInsts = quick ? 120'000 : 300'000;
        applyInstsFromEnv(c);
        return c;
    };

    const SystemConfig ref_cfg = prep(SystemConfig::ddr2());
    ReferenceSet refs(ref_cfg);

    std::cout << "== Figure 7: performance of AMB prefetching "
                 "(FBD vs FBD-AP) ==\n"
              << "SMT speedup relative to single-core DDR2 "
                 "references\n\n";

    for (unsigned cores : {1u, 2u, 4u, 8u}) {
        TextTable t({"workload", "FBD", "FBD-AP", "gain"});
        double sum_fbd = 0.0, sum_ap = 0.0;
        unsigned n = 0;
        for (const auto &mix : mixesFor(cores)) {
            RunResult fbd = runMix(prep(SystemConfig::fbdBase()), mix);
            RunResult ap = runMix(prep(SystemConfig::fbdAp()), mix);
            const double s_fbd = smtSpeedup(fbd, mix, refs);
            const double s_ap = smtSpeedup(ap, mix, refs);
            sum_fbd += s_fbd;
            sum_ap += s_ap;
            ++n;
            t.addRow({mix.name, fmtD(s_fbd), fmtD(s_ap),
                      fmtPct(s_ap / s_fbd - 1.0)});
        }
        t.addRow({"average", fmtD(sum_fbd / n), fmtD(sum_ap / n),
                  fmtPct(sum_ap / sum_fbd - 1.0)});
        std::cout << cores << "-core workloads\n";
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
