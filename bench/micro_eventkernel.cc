/**
 * @file
 * Event-kernel microbenchmarks (google-benchmark): the indexed event
 * queue, the transaction pool and the end-to-end simulation rate.
 *
 * Each hot path is benchmarked twice: once against the current kernel
 * and once against a self-contained reference implementing the
 * pre-overhaul design (lazy-deletion binary heap with std::function
 * callbacks; malloc'ed transactions), so one run of this binary
 * produces before/after numbers measured on the same host:
 *
 *   ./micro_eventkernel
 *
 * writes BENCH_kernel.json (google-benchmark JSON) into the current
 * directory unless --benchmark_out is given explicitly.  Rows named
 * Ref... and Malloc... are the "before" design, Kernel... and
 * Pool... the current one; Sharded.../N rows run the full system on
 * the sharded kernel at N lanes.
 *
 * Because the default-output run is how the committed baseline gets
 * captured, it refuses to start when the host's 1-minute load average
 * exceeds 1.0 (set FBDP_BENCH_FORCE=1 to override).
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"
#include "mc/transaction.hh"
#include "sim/event_queue.hh"
#include "sim/trace.hh"
#include "system/config.hh"
#include "system/runner.hh"
#include "workload/mixes.hh"
#include "workload/trace_file.hh"
#include "workload/trace_stream.hh"

namespace {

using namespace fbdp;

/**
 * The pre-overhaul queue, kept as a measurement baseline: a
 * std::priority_queue with lazy deletion (a reschedule pushes a fresh
 * entry and stale ones are skipped at pop time by sequence check) and
 * heap-allocating std::function callbacks.
 */
class RefEventQueue
{
  public:
    struct RefEvent
    {
        std::function<void()> cb;
        Tick when = 0;
        std::uint64_t seq = 0;
        bool live = false;
    };

    void
    schedule(RefEvent *ev, Tick when)
    {
        ev->when = when;
        ev->seq = nextSeq++;
        ev->live = true;
        pq.push(Item{when, ev->seq, ev});
    }

    void deschedule(RefEvent *ev) { ev->live = false; }

    bool
    step()
    {
        while (!pq.empty()) {
            Item it = pq.top();
            pq.pop();
            // Lazy deletion: drop entries superseded by a reschedule
            // or cancelled outright.
            if (!it.ev->live || it.ev->seq != it.seq)
                continue;
            curTick = it.when;
            it.ev->live = false;
            it.ev->cb();
            return true;
        }
        return false;
    }

    Tick now() const { return curTick; }

  private:
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        RefEvent *ev;

        bool
        operator>(const Item &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, std::greater<Item>>
        pq;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
};

// ---------------------------------------------------------------- //
// Schedule + dispatch of a single repeating event (the tightest     //
// kernel loop: a self-rescheduling clock).                          //
// ---------------------------------------------------------------- //

void
BM_KernelScheduleStep(benchmark::State &state)
{
    EventQueue eq;
    int counter = 0;
    Event ev([&counter] { ++counter; });
    Tick t = 0;
    for (auto _ : state) {
        t += 100;
        eq.schedule(&ev, t);
        eq.step();
    }
    benchmark::DoNotOptimize(counter);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelScheduleStep);

void
BM_RefScheduleStep(benchmark::State &state)
{
    RefEventQueue eq;
    int counter = 0;
    RefEventQueue::RefEvent ev;
    ev.cb = [&counter] { ++counter; };
    Tick t = 0;
    for (auto _ : state) {
        t += 100;
        eq.schedule(&ev, t);
        eq.step();
    }
    benchmark::DoNotOptimize(counter);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RefScheduleStep);

// ---------------------------------------------------------------- //
// Batched same-tick dispatch: many events due at one tick (the      //
// frame-boundary burst pattern of the sharded kernel, and DIMM      //
// callbacks landing on the same memory cycle).  run() extracts the  //
// whole tick into one contiguous batch before invoking; the         //
// reference pops the heap once per event.                           //
// ---------------------------------------------------------------- //

constexpr int sameTickBatch = 64;

void
BM_KernelBatchedSameTick(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    std::vector<std::unique_ptr<Event>> evs;
    for (int i = 0; i < sameTickBatch; ++i)
        evs.push_back(std::make_unique<Event>([&fired] { ++fired; }));
    Tick t = 0;
    for (auto _ : state) {
        t += 100;
        for (auto &e : evs)
            eq.schedule(e.get(), t);
        eq.run(t);
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * sameTickBatch);
}
BENCHMARK(BM_KernelBatchedSameTick);

void
BM_RefBatchedSameTick(benchmark::State &state)
{
    RefEventQueue eq;
    std::uint64_t fired = 0;
    std::vector<RefEventQueue::RefEvent> evs(sameTickBatch);
    for (auto &e : evs)
        e.cb = [&fired] { ++fired; };
    Tick t = 0;
    for (auto _ : state) {
        t += 100;
        for (auto &e : evs)
            eq.schedule(&e, t);
        for (int i = 0; i < sameTickBatch; ++i)
            eq.step();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(state.iterations() * sameTickBatch);
}
BENCHMARK(BM_RefBatchedSameTick);

// ---------------------------------------------------------------- //
// Reschedule churn over a populated queue: the controller wake      //
// pattern.  A new arrival pulls a parked wake event to an earlier   //
// tick; it fires, then re-parks far in the future.  The indexed     //
// queue sifts the live entry in place; the reference pushes a       //
// duplicate and leaves a stale entry behind that a later dispatch   //
// must skip — the dominant cost of lazy deletion in the simulator.  //
// ---------------------------------------------------------------- //

constexpr int churnPopulation = 256;
constexpr Tick churnPark = 8192;  ///< how far wakes park ahead

void
BM_KernelRescheduleChurn(benchmark::State &state)
{
    EventQueue eq;
    std::size_t fired = 0;
    std::vector<std::unique_ptr<Event>> evs;
    for (int i = 0; i < churnPopulation; ++i)
        evs.push_back(std::make_unique<Event>([&fired, i] {
            fired = static_cast<std::size_t>(i);
        }));
    Tick t = 1000;
    for (int i = 0; i < churnPopulation; ++i)
        eq.schedule(evs[static_cast<size_t>(i)].get(),
                    t + churnPark + static_cast<Tick>(i * 97));
    std::size_t victim = 0;
    for (auto _ : state) {
        t += 64;
        eq.schedule(evs[victim].get(), t + 32);  // pull earlier
        if (++victim == evs.size())
            victim = 0;
        eq.step();                               // it fires...
        eq.schedule(evs[fired].get(),
                    eq.now() + churnPark);       // ...and re-parks
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelRescheduleChurn);

void
BM_RefRescheduleChurn(benchmark::State &state)
{
    RefEventQueue eq;
    std::size_t fired = 0;
    std::vector<RefEventQueue::RefEvent> evs(churnPopulation);
    for (int i = 0; i < churnPopulation; ++i)
        evs[static_cast<size_t>(i)].cb = [&fired, i] {
            fired = static_cast<std::size_t>(i);
        };
    Tick t = 1000;
    for (int i = 0; i < churnPopulation; ++i)
        eq.schedule(&evs[static_cast<size_t>(i)],
                    t + churnPark + static_cast<Tick>(i * 97));
    std::size_t victim = 0;
    for (auto _ : state) {
        t += 64;
        eq.schedule(&evs[victim], t + 32);
        if (++victim == evs.size())
            victim = 0;
        eq.step();
        eq.schedule(&evs[fired], eq.now() + churnPark);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RefRescheduleChurn);

// ---------------------------------------------------------------- //
// Schedule/deschedule pairs (timeout-style events that usually      //
// never fire).  The indexed queue removes in place; the reference   //
// leaves garbage behind and pays at the next pop.                   //
// ---------------------------------------------------------------- //

void
BM_KernelScheduleDeschedule(benchmark::State &state)
{
    EventQueue eq;
    Event ev([] {});
    Tick t = 0;
    for (auto _ : state) {
        t += 100;
        eq.schedule(&ev, t);
        eq.deschedule(&ev);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelScheduleDeschedule);

void
BM_RefScheduleDeschedule(benchmark::State &state)
{
    RefEventQueue eq;
    RefEventQueue::RefEvent ev;
    ev.cb = [] {};
    Tick t = 0;
    for (auto _ : state) {
        t += 100;
        eq.schedule(&ev, t);
        eq.deschedule(&ev);
        // The reference's cancelled entries pile up in the heap; make
        // it pay the deferred cost here, as the simulator would at
        // its next dispatch.
        if (!eq.step())
            benchmark::DoNotOptimize(&ev);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RefScheduleDeschedule);

// ---------------------------------------------------------------- //
// Transaction lifecycle: pooled freelist vs. plain heap             //
// allocation, with a realistic in-flight population.                //
// ---------------------------------------------------------------- //

constexpr std::size_t transWindow = 32;

void
BM_PoolTransactionChurn(benchmark::State &state)
{
    std::vector<TransPtr> window;
    window.reserve(transWindow);
    for (std::size_t i = 0; i < transWindow; ++i)
        window.push_back(makeTransaction());
    std::size_t slot = 0;
    for (auto _ : state) {
        window[slot].reset();  // release the oldest...
        auto t = makeTransaction();  // ...and check a fresh one out
        t->lineAddr = static_cast<Addr>(slot) << 6;
        window[slot] = std::move(t);
        if (++slot == transWindow)
            slot = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoolTransactionChurn);

void
BM_MallocTransactionChurn(benchmark::State &state)
{
    std::vector<std::unique_ptr<Transaction>> window;
    window.reserve(transWindow);
    for (std::size_t i = 0; i < transWindow; ++i)
        window.push_back(std::make_unique<Transaction>());
    std::size_t slot = 0;
    for (auto _ : state) {
        window[slot].reset();
        auto t = std::make_unique<Transaction>();
        t->lineAddr = static_cast<Addr>(slot) << 6;
        window[slot] = std::move(t);
        if (++slot == transWindow)
            slot = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MallocTransactionChurn);

// ---------------------------------------------------------------- //
// Full-system simulation rate: a complete (small) run per           //
// iteration.  items/sec in the output is simulated insts per host   //
// second; the events_per_sec counter is dispatch throughput.        //
// ---------------------------------------------------------------- //

void
BM_FullSystemSimRate(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::fbdAp();
    cfg.measureInsts = 20'000;
    cfg.warmupInsts = 5'000;
    const WorkloadMix &mix = mixByName("2C-1");
    std::uint64_t insts = 0, events = 0;
    double event_seconds = 0.0;
    for (auto _ : state) {
        RunResult r = runMix(cfg, mix);
        insts += r.runInsts;
        events += r.kernel.eventsDispatched;
        event_seconds += r.kernel.hostEventSeconds;
        benchmark::DoNotOptimize(r.ipcSum());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.counters["events_per_sec"] = benchmark::Counter(
        event_seconds > 0.0
            ? static_cast<double>(events) / event_seconds
            : 0.0);
}
BENCHMARK(BM_FullSystemSimRate)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- //
// Sharded-kernel simulation rate: the same full run on an           //
// eight-channel machine at 1/2/4/8 lanes (cfg.threads).  The arg    //
// is the lane count; results are bit-identical across rows by the   //
// kernel's determinism contract, so only the rate moves.  On a      //
// single-CPU host the >1 rows measure pure sharding overhead        //
// (oversubscribed lanes); on a multicore host they show scaling.    //
// ---------------------------------------------------------------- //

void
BM_ShardedFullSystemSimRate(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::fbdAp();
    cfg.logicChannels = 8;
    cfg.threads = static_cast<unsigned>(state.range(0));
    cfg.measureInsts = 20'000;
    cfg.warmupInsts = 5'000;
    cfg.benchmarks = mixByName("2C-1").benches;
    std::uint64_t insts = 0, events = 0;
    double event_seconds = 0.0;
    for (auto _ : state) {
        System sys(cfg);
        RunResult r = sys.run();
        insts += r.runInsts;
        events += r.kernel.eventsDispatched;
        event_seconds += r.kernel.hostEventSeconds;
        benchmark::DoNotOptimize(r.ipcSum());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.counters["events_per_sec"] = benchmark::Counter(
        event_seconds > 0.0
            ? static_cast<double>(events) / event_seconds
            : 0.0);
}
BENCHMARK(BM_ShardedFullSystemSimRate)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- //
// The same sharded run with the kernel self-profiler on             //
// (--profile-kernel).  Pairs row-for-row with the unprofiled        //
// benchmark above to bound the enabled-profiling overhead; the      //
// disabled cost is zero by construction (every clock read sits      //
// behind one `if (profiling)` branch).                              //
// ---------------------------------------------------------------- //

void
BM_ShardedFullSystemSimRateProfiled(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::fbdAp();
    cfg.logicChannels = 8;
    cfg.threads = static_cast<unsigned>(state.range(0));
    cfg.profileKernel = true;
    cfg.measureInsts = 20'000;
    cfg.warmupInsts = 5'000;
    cfg.benchmarks = mixByName("2C-1").benches;
    std::uint64_t insts = 0;
    double busy = 0.0, wait = 0.0, wall = 0.0;
    for (auto _ : state) {
        System sys(cfg);
        RunResult r = sys.run();
        insts += r.runInsts;
        for (const LaneProfile &l : r.kernel.lanes) {
            busy += l.busySeconds + l.drainSeconds;
            wait += l.barrierWaitSeconds;
            wall += l.wallSeconds;
        }
        benchmark::DoNotOptimize(r.ipcSum());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.counters["busy_frac"] = benchmark::Counter(
        wall > 0.0 ? busy / wall : 0.0);
    state.counters["barrier_wait_frac"] = benchmark::Counter(
        wall > 0.0 ? wait / wall : 0.0);
}
BENCHMARK(BM_ShardedFullSystemSimRateProfiled)
    ->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- //
// The round barrier in isolation: N lanes arriving and releasing    //
// with an empty hook, the per-round synchronisation floor of the    //
// sharded kernel.  items/sec is barrier rounds per second.  All     //
// lanes run the same hook-checked shutdown so every lane exits at   //
// the same round boundary, mirroring the kernel's stopRounds        //
// protocol.                                                         //
// ---------------------------------------------------------------- //

void
BM_ShardBarrier(benchmark::State &state)
{
    const unsigned lanes = static_cast<unsigned>(state.range(0));
    SpinBarrier barrier(lanes);
    std::atomic<bool> main_done{false};
    std::atomic<bool> stop{false};
    const auto hook = [&] {
        if (main_done.load(std::memory_order_relaxed))
            stop.store(true, std::memory_order_relaxed);
    };

    std::vector<std::thread> peers;
    for (unsigned i = 1; i < lanes; ++i) {
        peers.emplace_back([&] {
            do {
                barrier.arriveAndWait(hook);
            } while (!stop.load(std::memory_order_relaxed));
        });
    }

    for (auto _ : state)
        barrier.arriveAndWait(hook);
    main_done.store(true, std::memory_order_relaxed);
    do {
        barrier.arriveAndWait(hook);
    } while (!stop.load(std::memory_order_relaxed));

    for (auto &p : peers)
        p.join();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardBarrier)->Arg(1)->Arg(2)->Arg(4);

// ---------------------------------------------------------------- //
// Cost of the always-compiled trace points.  SimRateTraceDisabled   //
// runs with the tracer detached — every trace point reduces to one  //
// branch on a null pointer — and pairs with BM_FullSystemSimRate    //
// above (built before the trace points existed in older revisions)  //
// to bound the disabled-observability overhead.  SimRateTraced      //
// records a full lifecycle trace into the ring buffer (no export),  //
// measuring the enabled cost.                                       //
// ---------------------------------------------------------------- //

void
BM_FullSystemSimRateTraceDisabled(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::fbdAp();
    cfg.measureInsts = 20'000;
    cfg.warmupInsts = 5'000;
    const WorkloadMix &mix = mixByName("2C-1");
    cfg.benchmarks = mix.benches;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        System sys(cfg);
        sys.attachTracer(nullptr);
        RunResult r = sys.run();
        insts += r.runInsts;
        benchmark::DoNotOptimize(r.ipcSum());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_FullSystemSimRateTraceDisabled)
    ->Unit(benchmark::kMillisecond);

void
BM_FullSystemSimRateTraced(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::fbdAp();
    cfg.measureInsts = 20'000;
    cfg.warmupInsts = 5'000;
    const WorkloadMix &mix = mixByName("2C-1");
    cfg.benchmarks = mix.benches;
    std::uint64_t insts = 0, recorded = 0;
    for (auto _ : state) {
        trace::Tracer tracer{trace::Filter{}};
        System sys(cfg);
        sys.attachTracer(&tracer);
        RunResult r = sys.run();
        insts += r.runInsts;
        recorded += tracer.recorded();
        benchmark::DoNotOptimize(r.ipcSum());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.counters["trace_events"] = benchmark::Counter(
        state.iterations()
            ? static_cast<double>(recorded)
                / static_cast<double>(state.iterations())
            : 0.0);
}
BENCHMARK(BM_FullSystemSimRateTraced)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- //
// Trace-ingest throughput: ops parsed per host second over one      //
// recorded trace.  TraceIngestTextLegacy is the seed loader         //
// (getline + sscanf via parseTraceOp); TraceIngestText is the       //
// chunked hand-rolled parser behind the streaming frontend;         //
// TraceIngestFbt decodes the fixed-width binary format.  Decoding   //
// runs synchronously here (no background worker) so the rows        //
// measure parse cost, not overlap.                                  //
// ---------------------------------------------------------------- //

std::string
benchTmpFile(const char *name)
{
    const char *tmp = std::getenv("TMPDIR");
    return std::string(tmp && *tmp ? tmp : "/tmp") + "/" + name;
}

/** One recorded text trace, shared by every ingest row. */
const std::string &
ingestTextTrace()
{
    static const std::string path = [] {
        std::string p = benchTmpFile("fbdp_bench_ingest.trace");
        SyntheticGenerator gen(benchProfile("swim"), 0, 42, true);
        TraceWriter w(p, TraceFormat::Text, false, "swim");
        for (int i = 0; i < 200'000; ++i)
            w.append(gen.next());
        w.close();
        return p;
    }();
    return path;
}

/** The same trace converted to .fbt. */
const std::string &
ingestFbtTrace()
{
    static const std::string path = [] {
        std::string p = benchTmpFile("fbdp_bench_ingest.fbt");
        TraceSpec spec;
        spec.path = ingestTextTrace();
        TracePassReader in(spec);
        TraceWriter w(p, TraceFormat::Fbt, false, "swim");
        TraceOp op;
        while (in.next(&op))
            w.append(op);
        w.close();
        return p;
    }();
    return path;
}

void
BM_TraceIngestTextLegacy(benchmark::State &state)
{
    const std::string &path = ingestTextTrace();
    std::uint64_t ops = 0;
    for (auto _ : state) {
        std::ifstream in(path);
        std::string line;
        TraceOp op;
        std::uint64_t line_no = 0;
        while (std::getline(in, line)) {
            ++line_no;
            if (parseTraceOp(line, &op, line_no)) {
                benchmark::DoNotOptimize(op);
                ++ops;
            }
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_TraceIngestTextLegacy)->Unit(benchmark::kMillisecond);

void
BM_TraceIngestText(benchmark::State &state)
{
    TraceSpec spec;
    spec.path = ingestTextTrace();
    std::uint64_t ops = 0;
    for (auto _ : state) {
        TracePassReader in(spec, /*background=*/false);
        TraceOp op;
        while (in.next(&op)) {
            benchmark::DoNotOptimize(op);
            ++ops;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_TraceIngestText)->Unit(benchmark::kMillisecond);

void
BM_TraceIngestFbt(benchmark::State &state)
{
    TraceSpec spec;
    spec.path = ingestFbtTrace();
    std::uint64_t ops = 0;
    for (auto _ : state) {
        TracePassReader in(spec, /*background=*/false);
        TraceOp op;
        while (in.next(&op)) {
            benchmark::DoNotOptimize(op);
            ++ops;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ops));
}
BENCHMARK(BM_TraceIngestFbt)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- //
// Full-system sim rate on a trace-bound config: the same file       //
// replayed in-RAM (arg 0) vs streamed with overlapped decode        //
// (arg 1).  items/sec is simulated insts per host second; the       //
// streamed row includes all chunk decoding on the fly where the     //
// in-RAM row pays a full materialisation per iteration (System      //
// construction) instead.                                            //
// ---------------------------------------------------------------- //

void
BM_TraceReplaySimRate(benchmark::State &state)
{
    const bool streamed = state.range(0) != 0;
    SystemConfig cfg = SystemConfig::fbdAp();
    cfg.measureInsts = 20'000;
    cfg.warmupInsts = 5'000;
    cfg.benchmarks = {
        streamed ? "trace:" + ingestTextTrace()
                 : "trace:" + ingestTextTrace() + ",stream=off"};
    std::uint64_t insts = 0;
    for (auto _ : state) {
        System sys(cfg);
        RunResult r = sys.run();
        insts += r.runInsts;
        benchmark::DoNotOptimize(r.ipcSum());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_TraceReplaySimRate)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // Default to emitting BENCH_kernel.json next to the caller unless
    // an explicit --benchmark_out was passed.
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strncmp(argv[i], "--benchmark_out", 15))
            has_out = true;
    }
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag = "--benchmark_out=BENCH_kernel.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        // A default-output run is a baseline capture: refuse to write
        // BENCH_kernel.json from a busy machine, where the numbers
        // would bake scheduler noise into the regression gate.
        // Explicit --benchmark_out runs (CI, experiments) are exempt;
        // FBDP_BENCH_FORCE=1 overrides when the load is understood.
        const char *force = std::getenv("FBDP_BENCH_FORCE");
        if (!force || std::strcmp(force, "1") != 0) {
            double load1 = 0.0;
            std::ifstream loadavg("/proc/loadavg");
            if (loadavg >> load1 && load1 > 1.0) {
                std::fprintf(stderr,
                             "micro_eventkernel: 1-min load average "
                             "%.2f > 1.0 — refusing to capture a "
                             "BENCH_kernel.json baseline on a busy "
                             "host.\nQuiesce the machine, pass an "
                             "explicit --benchmark_out, or set "
                             "FBDP_BENCH_FORCE=1 to override.\n",
                             load1);
                return 1;
            }
        }
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::AddCustomContext(
        "comparison",
        "Ref*/Malloc* rows reproduce the pre-overhaul design "
        "(lazy-deletion binary heap, std::function callbacks, "
        "malloc'ed transactions); Kernel*/Pool* rows are the "
        "current kernel.");
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
