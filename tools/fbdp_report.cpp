/**
 * @file
 * fbdp-report — diff two runs' stats/telemetry/benchmark JSON and
 * gate on regressions.
 *
 *   fbdp-report baseline.json candidate.json [options]
 *
 * Both inputs are arbitrary JSON documents: a `fbdpsim --stats-json`
 * dump, a google-benchmark results file, a telemetry summary.  Every
 * numeric leaf is compared under a relative tolerance; array elements
 * carrying a "name" member (google-benchmark's layout) are keyed by
 * that name so reordering does not produce spurious diffs.
 *
 * Options:
 *   --tol <frac>          relative tolerance, default 0.10 (10%)
 *   --key-tol <key>=<f>   per-key tolerance override (exact path)
 *   --only <substr>       compare only paths containing <substr>
 *                         (repeatable; OR semantics)
 *   --ignore <substr>     skip paths containing <substr> (repeatable)
 *   --higher-better       only a drop beyond tolerance is a regression
 *   --lower-better        only a rise beyond tolerance is a regression
 *   --strict              keys present on one side only also fail
 *   --verbose             list every changed key and missing key
 *   --profile             kernel-profile preset: compare only the
 *                         per-shard counters and the channel event
 *                         imbalance (kernel.shards.*, deterministic
 *                         and thread-count invariant), skipping host
 *                         seconds, rates and lane assignments — the
 *                         shape for gating two --profile-kernel dumps
 *                         against each other
 *
 * History mode — trend a cross-run ledger instead of diffing two
 * files (see system/ledger.hh; records come from `fbdpsim --ledger`
 * or a sweep's FBDP_LEDGER):
 *
 *   fbdp-report --history runs.jsonl [options]
 *
 *   --digest <hex>        trend this config digest (default: the
 *                         newest record's digest)
 *   --last <n>            use only the newest <n> matching records
 *   --tol / --only / --ignore / --higher-better / --lower-better /
 *   --verbose             as above; drift is two-sided by default
 *
 * The newest matching record is compared against the mean of its
 * predecessors; drift beyond tolerance exits 1, just like a two-file
 * regression.
 *
 *   --version             print the build-info string and exit
 *
 * Exit status: 0 no regression, 1 regression found, 2 usage or IO
 * error — so CI can tell "the metric got worse" apart from "the
 * comparison never happened".  An --only filter that matches nothing
 * also exits 2: a filter typo must not read as a clean pass.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/json.hh"
#include "system/ledger.hh"
#include "system/manifest.hh"
#include "system/rundiff.hh"

namespace {

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " <baseline.json> <candidate.json>"
        << " [options]\n"
        << "  --tol <frac>         relative tolerance (default 0.10)\n"
        << "  --key-tol <key>=<f>  per-key tolerance override\n"
        << "  --only <substr>      compare only matching paths"
        << " (repeatable)\n"
        << "  --ignore <substr>    skip matching paths (repeatable)\n"
        << "  --higher-better      only drops are regressions\n"
        << "  --lower-better       only rises are regressions\n"
        << "  --strict             one-sided keys also fail\n"
        << "  --verbose            list all changes and missing keys\n"
        << "  --profile            preset: only the deterministic\n"
        << "                       kernel.shards counters + event\n"
        << "                       imbalance (skips host time, rates\n"
        << "                       and lane assignments)\n"
        << "or trend a cross-run ledger:\n"
        << "       " << argv0 << " --history <runs.jsonl> [options]\n"
        << "  --digest <hex>       config digest to trend (default:\n"
        << "                       the newest record's)\n"
        << "  --last <n>           only the newest n matching records\n"
        << "  --version            print build info and exit\n"
        << "exit: 0 ok, 1 regression/drift, 2 usage/IO error\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fbdp;

    std::string pathA, pathB, historyPath, digest;
    DiffOptions opt;
    bool verbose = false, history = false;
    std::size_t lastN = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs an argument\n";
                std::exit(usage(argv[0]));
            }
            return argv[++i];
        };
        if (arg == "--tol") {
            opt.tolerance = std::strtod(need("--tol"), nullptr);
        } else if (arg == "--key-tol") {
            const std::string kv = need("--key-tol");
            const auto eq = kv.rfind('=');
            if (eq == std::string::npos || eq == 0) {
                std::cerr << "--key-tol wants <key>=<frac>, got '"
                          << kv << "'\n";
                return usage(argv[0]);
            }
            opt.keyTolerances[kv.substr(0, eq)] =
                std::strtod(kv.c_str() + eq + 1, nullptr);
        } else if (arg == "--only") {
            opt.only.push_back(need("--only"));
        } else if (arg == "--ignore") {
            opt.ignore.push_back(need("--ignore"));
        } else if (arg == "--higher-better") {
            opt.direction = DiffDirection::HigherBetter;
        } else if (arg == "--lower-better") {
            opt.direction = DiffDirection::LowerBetter;
        } else if (arg == "--strict") {
            opt.strict = true;
        } else if (arg == "--profile") {
            // The kernel self-profile's deterministic slice: per-shard
            // event/queue/mailbox counters and the channel imbalance
            // summary compare exactly across thread counts; host
            // seconds, derived rates and the shard->lane assignment
            // are host/schedule facts and are skipped.
            opt.only.push_back("kernel.shards.");
            opt.only.push_back("kernel.event_imbalance");
            opt.ignore.push_back("_seconds");
            opt.ignore.push_back("per_sec");
            opt.ignore.push_back(".lane");
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--history") {
            history = true;
            historyPath = need("--history");
        } else if (arg == "--digest") {
            digest = need("--digest");
        } else if (arg == "--last") {
            lastN = static_cast<std::size_t>(
                std::strtoull(need("--last"), nullptr, 10));
        } else if (arg == "--version") {
            std::cout << RunManifest::buildInfo() << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage(argv[0]);
        } else if (pathA.empty()) {
            pathA = arg;
        } else if (pathB.empty()) {
            pathB = arg;
        } else {
            std::cerr << "unexpected extra operand '" << arg << "'\n";
            return usage(argv[0]);
        }
    }
    if (history) {
        if (!pathA.empty() || !pathB.empty()) {
            std::cerr << "--history takes the ledger path, no other "
                         "operands\n";
            return usage(argv[0]);
        }
        std::string err;
        const auto records = readLedger(historyPath, &err);
        if (!err.empty()) {
            std::cerr << err << "\n";
            return 2;
        }
        HistoryOptions hopt;
        hopt.tolerance = opt.tolerance;
        hopt.lastN = lastN;
        hopt.digest = digest;
        hopt.direction = opt.direction;
        hopt.only = opt.only;
        hopt.ignore = opt.ignore;
        const HistoryReport rep = analyzeHistory(records, hopt);
        if (!rep.ok()) {
            std::cerr << "fbdp-report: " << rep.error << "\n";
            return 2;
        }
        printHistoryReport(rep, std::cout, verbose);
        if (!opt.only.empty() && rep.diff.compared == 0) {
            std::cerr << "fbdp-report: --only filter matched no "
                         "metric\n";
            return 2;
        }
        if (rep.drifted()) {
            std::cout << "RESULT: DRIFT\n";
            return 1;
        }
        std::cout << "RESULT: OK\n";
        return 0;
    }

    if (pathA.empty() || pathB.empty())
        return usage(argv[0]);

    const json::ParseResult a = json::parseFile(pathA);
    if (!a.ok()) {
        std::cerr << pathA << ": " << a.error << "\n";
        return 2;
    }
    const json::ParseResult b = json::parseFile(pathB);
    if (!b.ok()) {
        std::cerr << pathB << ": " << b.error << "\n";
        return 2;
    }

    const DiffReport report = diffRuns(flattenJson(a.value),
                                       flattenJson(b.value), opt);

    std::cout << "A: " << pathA << "\nB: " << pathB << "\n";
    printDiffReport(report, std::cout, verbose);

    // A filter that selects nothing compared nothing: that is a typo
    // (or a renamed metric), not a pass.
    if (!opt.only.empty() && report.compared == 0) {
        std::cerr << "fbdp-report: --only filter matched no key\n";
        return 2;
    }

    if (report.failed()) {
        std::cout << "RESULT: REGRESSION\n";
        return 1;
    }
    std::cout << "RESULT: OK\n";
    return 0;
}
