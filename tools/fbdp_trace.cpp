/**
 * @file
 * fbdp-trace — trace-file Swiss-army knife for the streaming frontend.
 *
 *   fbdp-trace convert IN OUT [--format auto|text|fbt] [--gzip]
 *       Re-encode IN (text, .fbt, or gzip of either — detected by
 *       magic) as OUT.  The output format defaults to OUT's
 *       extension: *.fbt[.gz] writes binary, anything else text;
 *       a .gz suffix (or --gzip) compresses.
 *
 *   fbdp-trace record BENCH OUT [--ops N] [--seed S] [--no-sp]
 *              [--format auto|text|fbt] [--gzip]
 *       Record N ops (default 1000000) of the synthetic generator for
 *       profile BENCH straight to OUT (same format rules as convert).
 *
 *   fbdp-trace head IN [--ops N]
 *       Print the first N ops (default 10) in the text format.
 *
 *   fbdp-trace stat IN
 *       One pass over IN: format, header metadata, op counts by
 *       kind, instruction count, footprint bounds.
 *
 * Exit codes: 0 success, 2 usage error.  File errors are fatal with
 * the offending path (exit 1).
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "system/manifest.hh"
#include "system/metrics.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"
#include "workload/trace_file.hh"
#include "workload/trace_stream.hh"

namespace {

using namespace fbdp;

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: fbdp-trace convert IN OUT [--format auto|text|fbt] "
        "[--gzip]\n"
        "       fbdp-trace record BENCH OUT [--ops N] [--seed S] "
        "[--no-sp] [--format ...] [--gzip]\n"
        "       fbdp-trace head IN [--ops N]\n"
        "       fbdp-trace stat IN\n"
        "       fbdp-trace --version\n";
    std::exit(2);
}

bool
hasSuffix(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size()
        && s.compare(s.size() - suffix.size(), suffix.size(), suffix)
               == 0;
}

/** Output encoding implied by @p path (".gz" stripped first). */
TraceFormat
formatFromPath(const std::string &path)
{
    std::string stem = path;
    if (hasSuffix(stem, ".gz"))
        stem.resize(stem.size() - 3);
    return hasSuffix(stem, ".fbt") ? TraceFormat::Fbt
                                   : TraceFormat::Text;
}

struct OutOptions
{
    TraceFormat format = TraceFormat::Auto;  ///< Auto = by extension
    bool gzip = false;
    bool gzipExplicit = false;

    TraceFormat
    resolveFormat(const std::string &out_path) const
    {
        return format == TraceFormat::Auto ? formatFromPath(out_path)
                                           : format;
    }

    bool
    resolveGzip(const std::string &out_path) const
    {
        return gzipExplicit ? gzip : hasSuffix(out_path, ".gz");
    }
};

int
cmdConvert(const std::string &in, const std::string &out,
           const OutOptions &opts)
{
    TraceSpec spec;
    spec.path = in;
    TracePassReader reader(spec, /*background=*/true);
    const TraceFormat ofmt = opts.resolveFormat(out);
    const bool gz = opts.resolveGzip(out);
    std::string name = reader.header().profileName;
    if (name.empty())
        name = "converted:" + in;
    TraceWriter writer(out, ofmt, gz, name,
                       reader.header().opCount);
    TraceOp op;
    while (reader.next(&op))
        writer.append(op);
    writer.close();
    std::cout << "fbdp-trace: wrote " << writer.written() << " ops to "
              << out << " (" << traceFormatName(ofmt)
              << (gz ? ", gzip" : "") << ")\n";
    return 0;
}

int
cmdRecord(const std::string &bench, const std::string &out,
          std::uint64_t n_ops, std::uint64_t seed, bool sw_prefetch,
          const OutOptions &opts)
{
    SyntheticGenerator gen(benchProfile(bench), 0, seed, sw_prefetch);
    const TraceFormat ofmt = opts.resolveFormat(out);
    const bool gz = opts.resolveGzip(out);
    TraceWriter writer(out, ofmt, gz, bench, n_ops);
    for (std::uint64_t i = 0; i < n_ops; ++i)
        writer.append(gen.next());
    writer.close();
    std::cout << "fbdp-trace: recorded " << n_ops << " ops of '"
              << bench << "' to " << out << " ("
              << traceFormatName(ofmt) << (gz ? ", gzip" : "")
              << ")\n";
    return 0;
}

int
cmdHead(const std::string &in, std::uint64_t n_ops)
{
    TraceSpec spec;
    spec.path = in;
    TracePassReader reader(spec);
    TraceOp op;
    for (std::uint64_t i = 0; i < n_ops && reader.next(&op); ++i)
        std::cout << formatTraceOp(op) << "\n";
    return 0;
}

int
cmdStat(const std::string &in)
{
    TraceSpec spec;
    spec.path = in;
    TracePassReader reader(spec, /*background=*/true);
    std::uint64_t counts[3] = {0, 0, 0};
    std::uint64_t total = 0, insts = 0;
    Addr lo = ~static_cast<Addr>(0), hi = 0;
    TraceOp op;
    while (reader.next(&op)) {
        ++counts[static_cast<int>(op.kind)];
        ++total;
        insts += op.gap + 1;
        lo = op.addr < lo ? op.addr : lo;
        hi = op.addr > hi ? op.addr : hi;
    }
    TextTable t({"metric", "value"});
    t.addRow({"file", in});
    t.addRow({"format", traceFormatName(reader.format())});
    if (reader.format() == TraceFormat::Fbt) {
        t.addRow({"header profile", reader.header().profileName});
        t.addRow({"header op count",
                  std::to_string(reader.header().opCount)});
    }
    t.addRow({"operations", std::to_string(total)});
    t.addRow({"loads", std::to_string(counts[0])});
    t.addRow({"stores", std::to_string(counts[1])});
    t.addRow({"prefetches", std::to_string(counts[2])});
    t.addRow({"instructions (incl. gaps)", std::to_string(insts)});
    t.addRow({"lowest address", csprintf("%llx",
              static_cast<unsigned long long>(lo))});
    t.addRow({"highest address", csprintf("%llx",
              static_cast<unsigned long long>(hi))});
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    if (cmd == "--version") {
        std::cout << RunManifest::buildInfo() << "\n";
        return 0;
    }

    // Leading positional arguments, then options.
    std::vector<std::string> pos;
    OutOptions opts;
    std::uint64_t n_ops = 0;
    bool n_ops_set = false;
    std::uint64_t seed = 42;
    bool sw_prefetch = true;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--format")) {
            const std::string v = need(i);
            if (v == "auto")
                opts.format = TraceFormat::Auto;
            else if (v == "text")
                opts.format = TraceFormat::Text;
            else if (v == "fbt")
                opts.format = TraceFormat::Fbt;
            else
                usage();
        } else if (!std::strcmp(a, "--gzip")) {
            opts.gzip = true;
            opts.gzipExplicit = true;
        } else if (!std::strcmp(a, "--ops")) {
            n_ops = static_cast<std::uint64_t>(
                std::atoll(need(i)));
            n_ops_set = true;
        } else if (!std::strcmp(a, "--seed")) {
            seed = static_cast<std::uint64_t>(std::atoll(need(i)));
        } else if (!std::strcmp(a, "--no-sp")) {
            sw_prefetch = false;
        } else if (a[0] == '-') {
            usage();
        } else {
            pos.push_back(a);
        }
    }

    if (cmd == "convert" && pos.size() == 2)
        return cmdConvert(pos[0], pos[1], opts);
    if (cmd == "record" && pos.size() == 2)
        return cmdRecord(pos[0], pos[1],
                         n_ops_set ? n_ops : 1'000'000, seed,
                         sw_prefetch, opts);
    if (cmd == "head" && pos.size() == 1)
        return cmdHead(pos[0], n_ops_set ? n_ops : 10);
    if (cmd == "stat" && pos.size() == 1)
        return cmdStat(pos[0]);
    usage();
}
