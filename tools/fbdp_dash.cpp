/**
 * @file
 * fbdp-dash — render the cross-run ledger as a static HTML dashboard.
 *
 *   fbdp-dash <runs.jsonl> [-o dash.html] [--metric NAME]...
 *   fbdp-dash --version
 *
 * The output is one self-contained HTML file (inline CSS, inline SVG
 * sparklines, no scripts, no external fetches) that answers "what
 * does the fleet look like?" at a glance:
 *
 *  - a cell grid: one row per trend line (config digest), with the
 *    newest record's headline metrics and a drift verdict computed
 *    exactly like `fbdp-report --history` (newest vs mean of priors,
 *    10% two-sided tolerance),
 *  - sparklines per trend line for the selected metrics (default:
 *    insts_per_sec, ipc_sum, avg_read_latency_ns, dynamic_power),
 *  - the newest record's full manifest, so the dashboard names the
 *    build and host it describes.
 *
 * Exit codes: 0 success, 2 usage or IO error.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "system/ledger.hh"
#include "system/manifest.hh"
#include "system/rundiff.hh"

namespace {

using namespace fbdp;

int
usage()
{
    std::cerr
        << "usage: fbdp-dash <runs.jsonl> [-o out.html] "
           "[--metric NAME]...\n"
           "       fbdp-dash --version\n"
           "renders the cross-run ledger as a static HTML dashboard\n"
           "(default metrics: insts_per_sec ipc_sum "
           "avg_read_latency_ns dynamic_power)\n";
    return 2;
}

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
fmtMetric(double v)
{
    if (!std::isfinite(v))
        return v != v ? "NaN" : (v > 0 ? "inf" : "-inf");
    const double a = std::fabs(v);
    if (a >= 1e6)
        return csprintf("%.3g", v);
    if (a >= 100.0)
        return csprintf("%.1f", v);
    return csprintf("%.4g", v);
}

/** One parsed ledger record of one trend line. */
struct Point
{
    std::uint64_t seq = 0; ///< position in the ledger (file order)
    std::map<std::string, double> metrics;
};

/** All records sharing one config digest. */
struct TrendLine
{
    std::string digest;
    std::string config, mix;
    std::string seed; ///< rendered, exact (may exceed 2^53)
    std::vector<Point> points;
    std::vector<json::ValuePtr> records; ///< same order as points
};

/** Inline SVG sparkline over @p vals (file order, oldest left). */
std::string
sparkline(const std::vector<double> &vals)
{
    const int w = 160, h = 36, pad = 2;
    std::ostringstream os;
    os << "<svg class=\"spark\" width=\"" << w << "\" height=\"" << h
       << "\" viewBox=\"0 0 " << w << ' ' << h << "\">";
    std::vector<double> finite;
    for (const double v : vals) {
        if (std::isfinite(v))
            finite.push_back(v);
    }
    if (!finite.empty()) {
        const double lo =
            *std::min_element(finite.begin(), finite.end());
        const double hi =
            *std::max_element(finite.begin(), finite.end());
        auto xAt = [&](std::size_t i) {
            return vals.size() < 2
                ? w / 2.0
                : pad
                    + static_cast<double>(i) * (w - 2.0 * pad)
                        / static_cast<double>(vals.size() - 1);
        };
        auto yAt = [&](double v) {
            if (hi <= lo)
                return h / 2.0;
            return h - pad - (v - lo) / (hi - lo) * (h - 2.0 * pad);
        };
        os << "<polyline fill=\"none\" stroke=\"#4878a8\" "
              "stroke-width=\"1.5\" points=\"";
        bool first = true;
        for (std::size_t i = 0; i < vals.size(); ++i) {
            if (!std::isfinite(vals[i]))
                continue;
            os << (first ? "" : " ") << csprintf("%.1f", xAt(i)) << ','
               << csprintf("%.1f", yAt(vals[i]));
            first = false;
        }
        os << "\"/>";
        // Mark the newest value.
        for (std::size_t i = vals.size(); i-- > 0;) {
            if (std::isfinite(vals[i])) {
                os << "<circle cx=\"" << csprintf("%.1f", xAt(i))
                   << "\" cy=\"" << csprintf("%.1f", yAt(vals[i]))
                   << "\" r=\"2.5\" fill=\"#c0504d\"/>";
                break;
            }
        }
    }
    os << "</svg>";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string ledgerPath, outPath = "dash.html";
    std::vector<std::string> metrics;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs an argument\n";
                std::exit(usage());
            }
            return argv[++i];
        };
        if (arg == "--version") {
            std::cout << RunManifest::buildInfo() << "\n";
            return 0;
        } else if (arg == "-o" || arg == "--output") {
            outPath = need("-o");
        } else if (arg == "--metric") {
            metrics.push_back(need("--metric"));
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage();
        } else if (ledgerPath.empty()) {
            ledgerPath = arg;
        } else {
            std::cerr << "unexpected extra operand '" << arg << "'\n";
            return usage();
        }
    }
    if (ledgerPath.empty())
        return usage();
    if (metrics.empty())
        metrics = {"insts_per_sec", "ipc_sum", "avg_read_latency_ns",
                   "dynamic_power"};

    std::string err;
    const std::vector<json::ValuePtr> records =
        readLedger(ledgerPath, &err);
    if (!err.empty()) {
        std::cerr << "fbdp-dash: " << err << "\n";
        return 2;
    }

    // Group records into trend lines by config digest, file order.
    std::vector<TrendLine> lines;
    std::map<std::string, std::size_t> byDigest;
    json::ValuePtr newest;
    std::uint64_t seq = 0;
    for (const json::ValuePtr &rec : records) {
        if (!rec || !rec->isObject())
            continue;
        const json::ValuePtr schema = rec->get("schema");
        if (!schema || !schema->isString()
            || schema->asString() != ledgerSchema)
            continue;
        const json::ValuePtr m = rec->get("manifest");
        const json::ValuePtr d = m ? m->get("config_digest") : nullptr;
        if (!d || !d->isString())
            continue;
        newest = rec;
        const std::string digest = d->asString();
        auto [it, fresh] =
            byDigest.emplace(digest, lines.size());
        if (fresh) {
            TrendLine tl;
            tl.digest = digest;
            lines.push_back(std::move(tl));
        }
        TrendLine &tl = lines[it->second];
        if (const json::ValuePtr c = rec->get("config");
            c && c->isString())
            tl.config = c->asString();
        if (const json::ValuePtr x = rec->get("mix");
            x && x->isString())
            tl.mix = x->asString();
        if (const json::ValuePtr s = rec->get("seed");
            s && s->isNumber())
            tl.seed = s->isInteger()
                ? json::encodeNumber(s->asUint64())
                : json::encodeNumber(s->asNumber());
        Point p;
        p.seq = seq++;
        for (const auto &[key, entry] :
             flattenJson(rec->get("metrics"))) {
            if (entry.numeric)
                p.metrics[key] = entry.num;
        }
        tl.points.push_back(std::move(p));
        tl.records.push_back(rec);
    }
    if (lines.empty()) {
        std::cerr << "fbdp-dash: '" << ledgerPath
                  << "' holds no ledger records\n";
        return 2;
    }

    std::ofstream os(outPath);
    if (!os) {
        std::cerr << "fbdp-dash: cannot open " << outPath
                  << " for writing\n";
        return 2;
    }

    os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
          "<title>fbdp dashboard</title>\n<style>\n"
          "body{font:14px/1.45 system-ui,sans-serif;margin:24px;"
          "color:#222}\n"
          "h1{font-size:20px} h2{font-size:16px;margin-top:28px}\n"
          "table{border-collapse:collapse;margin-top:8px}\n"
          "th,td{border:1px solid #ccc;padding:4px 10px;"
          "text-align:right;font-variant-numeric:tabular-nums}\n"
          "th{background:#f0f2f5} td.l,th.l{text-align:left}\n"
          ".ok{color:#1a7f37;font-weight:600}\n"
          ".drift{color:#c0392b;font-weight:600}\n"
          ".na{color:#888}\n"
          ".mono{font-family:ui-monospace,monospace;font-size:12px}\n"
          ".spark{vertical-align:middle}\n"
          "</style></head><body>\n"
          "<h1>fbdp cross-run dashboard</h1>\n"
       << "<p class=\"mono\">" << htmlEscape(RunManifest::buildInfo())
       << " &mdash; ledger: " << htmlEscape(ledgerPath) << " ("
       << records.size() << " records, " << lines.size()
       << " trend lines)</p>\n";

    // --- cell grid: one row per trend line ---
    os << "<h2>Cells</h2>\n<table>\n<tr>"
          "<th class=\"l\">config</th><th class=\"l\">mix</th>"
          "<th>seed</th><th class=\"l\">digest</th><th>runs</th>";
    for (const std::string &m : metrics)
        os << "<th>" << htmlEscape(m) << "</th>";
    os << "<th>trend</th></tr>\n";
    for (const TrendLine &tl : lines) {
        os << "<tr><td class=\"l\">" << htmlEscape(tl.config)
           << "</td><td class=\"l\">" << htmlEscape(tl.mix)
           << "</td><td>" << htmlEscape(tl.seed)
           << "</td><td class=\"l mono\">"
           << htmlEscape(tl.digest.substr(0, 12)) << "</td><td>"
           << tl.points.size() << "</td>";
        const Point &latest = tl.points.back();
        for (const std::string &m : metrics) {
            const auto it = latest.metrics.find(m);
            if (it == latest.metrics.end())
                os << "<td class=\"na\">&ndash;</td>";
            else
                os << "<td>" << fmtMetric(it->second) << "</td>";
        }
        // Same verdict `fbdp-report --history` would give.
        if (tl.points.size() < 2) {
            os << "<td class=\"na\">n/a</td>";
        } else {
            HistoryOptions hopt;
            hopt.digest = tl.digest;
            const HistoryReport rep =
                analyzeHistory(tl.records, hopt);
            if (!rep.ok())
                os << "<td class=\"na\">n/a</td>";
            else if (rep.drifted())
                os << "<td class=\"drift\">DRIFT</td>";
            else
                os << "<td class=\"ok\">ok</td>";
        }
        os << "</tr>\n";
    }
    os << "</table>\n";

    // --- sparklines per trend line ---
    os << "<h2>Trends</h2>\n<table>\n<tr><th class=\"l\">cell</th>";
    for (const std::string &m : metrics)
        os << "<th>" << htmlEscape(m) << "</th>";
    os << "</tr>\n";
    for (const TrendLine &tl : lines) {
        os << "<tr><td class=\"l\">" << htmlEscape(tl.config) << " / "
           << htmlEscape(tl.mix) << " <span class=\"mono\">seed "
           << htmlEscape(tl.seed) << "</span></td>";
        for (const std::string &m : metrics) {
            std::vector<double> vals;
            for (const Point &p : tl.points) {
                const auto it = p.metrics.find(m);
                vals.push_back(it == p.metrics.end()
                                   ? std::nan("")
                                   : it->second);
            }
            const Point &latest = tl.points.back();
            const auto it = latest.metrics.find(m);
            os << "<td>" << sparkline(vals);
            if (it != latest.metrics.end())
                os << " <span class=\"mono\">"
                   << fmtMetric(it->second) << "</span>";
            os << "</td>";
        }
        os << "</tr>\n";
    }
    os << "</table>\n";

    // --- newest manifest, in full ---
    os << "<h2>Latest manifest</h2>\n<table>\n";
    if (const json::ValuePtr m =
            newest ? newest->get("manifest") : nullptr;
        m && m->isObject()) {
        for (const auto &[key, v] : m->members()) {
            os << "<tr><th class=\"l\">" << htmlEscape(key)
               << "</th><td class=\"l mono\">";
            if (v->isString())
                os << htmlEscape(v->asString());
            else if (v->isBool())
                os << (v->asBool() ? "true" : "false");
            else if (v->isNumber())
                os << htmlEscape(
                    v->isInteger()
                        ? json::encodeNumber(v->asUint64())
                        : json::encodeNumber(v->asNumber()));
            else
                os << "&ndash;";
            os << "</td></tr>\n";
        }
    }
    os << "</table>\n</body></html>\n";

    if (!os) {
        std::cerr << "fbdp-dash: short write to " << outPath << "\n";
        return 2;
    }
    std::cout << "fbdp-dash: " << records.size() << " records, "
              << lines.size() << " trend lines -> " << outPath
              << "\n";
    return 0;
}
